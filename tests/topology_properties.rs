//! Property-based tests of the link-topology layer (proptest): route
//! symmetry, a triangle inequality on charged link time, bit-for-bit
//! equivalence of a single-island NVLink topology with the flat cost
//! model, and the guarantee that the `W204` cross-island lint never fires
//! on a single-island machine.

use proptest::prelude::*;

use micco::analysis::{analyze_plan_with, analyze_plan_with_topology, AnalysisConfig};
use micco::analysis::{Code, Severity};
use micco::gpusim::GpuId;
use micco::gpusim::{LinkSpec, LinkTopology, MachineConfig, SimMachine};
use micco::sched::{execute_plan_with_topology, repair_plan, repair_plan_with, SchedulePlan};
use micco::sched::{
    plan_schedule_with_topology, run_schedule_with, run_schedule_with_topology, DriverOptions,
    GrouteScheduler, MiccoScheduler, ReuseBounds, RoundRobinScheduler, Scheduler,
};
use micco::workload::{RepeatDistribution, WorkloadSpec};

/// Strategy: a topology with 2–16 GPUs whose island size divides the GPU
/// count, an optional multi-island node tier, and randomized link tiers.
fn topology_strategy() -> impl Strategy<Value = LinkTopology> {
    (2usize..=16, any::<u8>(), 1.0f64..400.0, 0.0f64..50.0).prop_map(
        |(gpus, pick, gib_s, latency_us)| {
            let divisors: Vec<usize> = (1..=gpus).filter(|d| gpus % d == 0).collect();
            let island = divisors[pick as usize % divisors.len()];
            let mut topo = LinkTopology::nvlink(gpus, island);
            // node tier: a multiple of the island size that divides gpus
            let nodes: Vec<usize> = (1..=gpus)
                .filter(|d| gpus % d == 0 && d % island == 0)
                .collect();
            let node = nodes[(pick as usize / 7) % nodes.len()];
            topo = topo.with_node_size(node);
            topo.with_pcie(LinkSpec::new(gib_s, latency_us))
        },
    )
}

/// Strategy: a modest random workload.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..10,
        0.0f64..=1.0,
        any::<bool>(),
        1usize..4,
        any::<u64>(),
    )
        .prop_map(|(vs, rate, gaussian, nv, seed)| {
            WorkloadSpec::new(vs, 64)
                .with_repeat_rate(rate)
                .with_distribution(if gaussian {
                    RepeatDistribution::Gaussian
                } else {
                    RepeatDistribution::Uniform
                })
                .with_vectors(nv)
                .with_seed(seed)
        })
}

fn scheduler_for(which: usize) -> Box<dyn Scheduler> {
    match which % 3 {
        0 => Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
        1 => Box::new(GrouteScheduler::new()),
        _ => Box::new(RoundRobinScheduler::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Charged link time is exactly symmetric: the route from a to b and
    /// the route from b to a cost the same, bit for bit, for any byte
    /// count — including the float-non-associative multi-hop case.
    #[test]
    fn routes_charge_symmetrically(
        topo in topology_strategy(),
        bytes in 0u64..(1u64 << 34),
        a in 0usize..16,
        b in 0usize..16,
    ) {
        let n = topo.num_gpus();
        let (a, b) = (a % n, b % n);
        let ab = topo.transfer_secs(a, b, bytes);
        let ba = topo.transfer_secs(b, a, bytes);
        prop_assert_eq!(ab.to_bits(), ba.to_bits());
        if a == b {
            prop_assert_eq!(ab, 0.0);
        } else {
            prop_assert!(ab > 0.0);
        }
    }

    /// Triangle inequality on charged time: routing a→c never beats the
    /// shortest path, so going via any b costs at least as much (up to
    /// float slack from summing in different orders).
    #[test]
    fn charged_time_satisfies_the_triangle_inequality(
        topo in topology_strategy(),
        bytes in 1u64..(1u64 << 32),
        a in 0usize..16,
        b in 0usize..16,
        c in 0usize..16,
    ) {
        let n = topo.num_gpus();
        let (a, b, c) = (a % n, b % n, c % n);
        let direct = topo.transfer_secs(a, c, bytes);
        let via = topo.transfer_secs(a, b, bytes) + topo.transfer_secs(b, c, bytes);
        prop_assert!(
            direct <= via * (1.0 + 1e-12) + f64::EPSILON,
            "direct {} > via {} ({}→{}→{})", direct, via, a, b, c
        );
    }

    /// A single-island NVLink topology whose link spec equals the flat
    /// cost model's d2d parameters reproduces the seed cost model bit for
    /// bit: identical placements, identical stats, identical elapsed time.
    #[test]
    fn single_island_flat_spec_is_bit_identical_to_seed(
        spec in spec_strategy(),
        which in 0usize..3,
        gpus in 1usize..6,
    ) {
        let stream = spec.generate();
        let cfg = MachineConfig::mi100_like(gpus);
        let topo = LinkTopology::nvlink(gpus, gpus)
            .with_nvlink(LinkSpec::new(cfg.cost.d2d_gib_s, cfg.cost.transfer_latency_us));
        let opts = DriverOptions::default();
        let flat = run_schedule_with(&mut *scheduler_for(which), &stream, &cfg, opts);
        let routed = run_schedule_with_topology(
            &mut *scheduler_for(which), &stream, &cfg, opts, Some(&topo));
        match (flat, routed) {
            (Ok(f), Ok(r)) => {
                prop_assert_eq!(f.assignments, r.assignments);
                prop_assert_eq!(f.stats, r.stats);
                prop_assert_eq!(f.elapsed_secs().to_bits(), r.elapsed_secs().to_bits());
            }
            (Err(_), Err(_)) => {}
            (f, r) => prop_assert!(false, "flat {:?} vs routed {:?} diverged", f.is_ok(), r.is_ok()),
        }
    }

    /// The W204 cross-island lint never fires on a single-island machine,
    /// whatever the scheduler, workload, or link speeds — and analyzing
    /// with the topology never perturbs the flat diagnostics.
    #[test]
    fn w204_never_fires_on_single_island_machines(
        spec in spec_strategy(),
        which in 0usize..3,
        gpus in 1usize..6,
        gib_s in 1.0f64..400.0,
        latency_us in 0.0f64..50.0,
    ) {
        let stream = spec.generate();
        let cfg = MachineConfig::mi100_like(gpus);
        let topo = LinkTopology::nvlink(gpus, gpus)
            .with_nvlink(LinkSpec::new(gib_s, latency_us));
        let opts = DriverOptions::default();
        let Ok(plan) = plan_schedule_with_topology(
            &mut *scheduler_for(which), &stream, &cfg, opts, Some(&topo)) else {
            return Ok(());
        };
        let acfg = AnalysisConfig::default();
        let with_topo = analyze_plan_with_topology(&plan, &stream, &cfg, &acfg, Some(&topo));
        prop_assert!(!with_topo.has(Code::CrossIslandTransfer), "{}", with_topo.render_text());
        let flat = analyze_plan_with(&plan, &stream, &cfg, &acfg);
        prop_assert_eq!(flat, with_topo);
    }

    /// Decide/execute stay bit-identical under any topology: replaying a
    /// topology-decided plan on a topology-carrying machine reproduces the
    /// planner's elapsed time exactly, and valid plans lint clean of
    /// errors under the same topology.
    #[test]
    fn topology_plans_replay_bit_identically(
        spec in spec_strategy(),
        which in 0usize..3,
        topo in topology_strategy(),
        aware in any::<bool>(),
    ) {
        let stream = spec.generate();
        let cfg = MachineConfig::mi100_like(topo.num_gpus());
        let mut opts = DriverOptions::default();
        if aware {
            opts = opts.with_topology_aware();
        }
        let Ok(plan) = plan_schedule_with_topology(
            &mut *scheduler_for(which), &stream, &cfg, opts, Some(&topo)) else {
            return Ok(());
        };
        let one_shot = run_schedule_with_topology(
            &mut *scheduler_for(which), &stream, &cfg, opts, Some(&topo)).expect("runs");
        let mut machine = SimMachine::new(opts.apply(&cfg));
        let report = micco::sched::execute_plan_with_topology(
            &plan, &stream, &mut machine, opts, Some(&topo)).expect("replays");
        prop_assert_eq!(&one_shot.assignments, &report.assignments);
        prop_assert_eq!(&one_shot.stats, &report.stats);
        prop_assert_eq!(
            one_shot.elapsed_secs().to_bits(),
            report.elapsed_secs().to_bits(),
            "planned and executed timelines must agree bit-for-bit"
        );
        let acfg = AnalysisConfig::default();
        let lint = analyze_plan_with_topology(&plan, &stream, &cfg, &acfg, Some(&topo));
        prop_assert!(!lint.denies(Severity::Error), "{}", lint.render_text());
    }
}

/// Chaos satellite: when a device is lost, topology-near repair
/// ([`repair_plan_with`]) re-places orphans onto same-island survivors, so
/// repaired plans do not regress cross-island transfer counts the way the
/// load-only repair does. Deterministic corpus (seed 0x5eed), 8 GPUs in
/// two NVLink islands, topology-aware placement.
#[test]
fn topology_near_repair_does_not_regress_cross_island_traffic() {
    let stream = WorkloadSpec::new(24, 64)
        .with_repeat_rate(0.6)
        .with_distribution(RepeatDistribution::Gaussian)
        .with_vectors(6)
        .with_seed(0x5eed)
        .generate();
    let topo = LinkTopology::nvlink(8, 4);
    let cfg = MachineConfig::mi100_like(8);
    let opts = DriverOptions::default().with_topology_aware();
    let plan = plan_schedule_with_topology(
        &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
        &stream,
        &cfg,
        opts,
        Some(&topo),
    )
    .expect("corpus plans cleanly");

    let cross_island = |p: &SchedulePlan| -> u64 {
        let mut machine = SimMachine::new(cfg);
        execute_plan_with_topology(p, &stream, &mut machine, opts, Some(&topo)).expect("replays");
        machine.cross_island_traffic().0
    };
    let fault_free = cross_island(&plan);

    // without a topology, the new entry point degenerates to the old one
    let lost = [GpuId(2)];
    assert_eq!(
        repair_plan_with(&plan, &lost, None).expect("survivors exist"),
        repair_plan(&plan, &lost).expect("survivors exist"),
    );

    // losing gpu 2: the topology-near repair keeps every orphan on its own
    // island and the cross-island transfer count does not regress at all
    let near = repair_plan_with(&plan, &lost, Some(&topo)).expect("survivors exist");
    near.validate(&stream)
        .expect("repair keeps the plan well-formed");
    assert_eq!(
        cross_island(&near),
        fault_free,
        "topology-near repair of gpu 2 must not add cross-island transfers"
    );

    // across every single-device loss, near repair never does worse than
    // the load-only repair, and strictly wins in aggregate
    let (mut near_total, mut naive_total) = (0u64, 0u64);
    for g in 0..8 {
        let lost = [GpuId(g)];
        let naive = cross_island(&repair_plan(&plan, &lost).expect("survivors"));
        let near = cross_island(&repair_plan_with(&plan, &lost, Some(&topo)).expect("survivors"));
        assert!(
            near <= naive,
            "losing gpu {g}: topology-near repair ({near}) beat by load-only repair ({naive})"
        );
        near_total += near;
        naive_total += naive;
    }
    assert!(
        near_total < naive_total,
        "topology-near repair must strictly reduce cross-island transfers in aggregate \
         ({near_total} vs {naive_total})"
    );
}
