//! End-to-end tests for the multi-tenant scheduling service: a running
//! daemon driven over HTTP through the load-generator client, asserting
//! the inter-job scheduling contract — weighted fair-share dispatch
//! order, admission-queue priority preemption, cancel semantics, and
//! warm restarts over a shared durable plan store.

use std::time::Duration;

use micco_core::SessionConfig;
use micco_load::Client;
use micco_serve::{JobState, Priority, ServeConfig, Service, TenantSpec};

/// A job that needs `gpus` devices; sized so simulated time is tiny and
/// the wall-clock hold comes from the daemon's `time_scale`.
fn job(gpus: usize) -> SessionConfig {
    SessionConfig {
        vector_size: 6,
        tensor_size: 32,
        vectors: 2,
        gpus,
        ..SessionConfig::default()
    }
}

/// A job with a much longer simulated makespan: used to pin the pool
/// busy while the queue is assembled, so dispatch order reflects the
/// policy, not HTTP submission races. Canceled once the queue is built
/// (cancel checkpoints every 2 ms, so release is prompt).
fn blocker_job() -> SessionConfig {
    SessionConfig {
        vector_size: 32,
        tensor_size: 48,
        vectors: 12,
        gpus: 2,
        ..SessionConfig::default()
    }
}

#[test]
fn weighted_fair_share_orders_concurrent_tenants() {
    // one-slot pool (every job takes both GPUs): dispatches are serial
    let service = Service::start(
        "127.0.0.1:0",
        ServeConfig {
            pool_gpus: 2,
            time_scale: 150.0,
            tenants: vec![
                TenantSpec {
                    name: "heavy".into(),
                    priority: Priority::Normal,
                    weight: 3,
                },
                TenantSpec {
                    name: "light".into(),
                    priority: Priority::Normal,
                    weight: 1,
                },
            ],
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = Client::new(service.addr());
    let shared = service.scheduling().clone();

    // pin the slot, then queue 4 jobs per tenant back-to-back
    let blocker = client.submit("boot", None, &blocker_job()).unwrap();
    let mut ids = Vec::new();
    for _ in 0..4 {
        ids.push(("heavy", client.submit("heavy", None, &job(2)).unwrap()));
    }
    for _ in 0..4 {
        ids.push(("light", client.submit("light", None, &job(2)).unwrap()));
    }
    client.cancel(blocker).unwrap();
    assert!(shared.wait_idle(Duration::from_secs(30)), "pool drained");

    // reconstruct the dispatch order from the daemon's records
    let mut order: Vec<(u64, &str)> = ids
        .iter()
        .map(|(tenant, id)| {
            let rec = shared.job(*id).unwrap();
            assert_eq!(rec.state, JobState::Done, "{tenant} job {id} finished");
            (rec.dispatch_seq.unwrap(), *tenant)
        })
        .collect();
    order.sort_unstable();
    let tenants: Vec<&str> = order.iter().map(|(_, t)| *t).collect();

    // weight 3 vs 1 with equal-cost jobs: the heavy tenant owns the
    // early slots, the light tenant's backlog drains last
    assert_eq!(tenants[0], "heavy", "FIFO tie-break on fresh vtimes");
    let heavy_in_first_five = tenants[..5].iter().filter(|t| **t == "heavy").count();
    assert!(
        heavy_in_first_five >= 3,
        "weight-3 tenant should dominate the early dispatches, got {tenants:?}"
    );
    assert_eq!(
        &tenants[6..],
        &["light", "light"],
        "the weight-1 backlog drains last, got {tenants:?}"
    );
    service.shutdown();
}

#[test]
fn admission_queue_preempts_by_priority() {
    let service = Service::start(
        "127.0.0.1:0",
        ServeConfig {
            pool_gpus: 2,
            max_queue: 2,
            time_scale: 200.0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = Client::new(service.addr());
    let shared = service.scheduling().clone();

    // one job runs, two low-priority jobs fill the whole queue
    let running = client.submit("t", Some("normal"), &blocker_job()).unwrap();
    let low_a = client.submit("t", Some("low"), &job(2)).unwrap();
    let low_b = client.submit("t", Some("low"), &job(2)).unwrap();

    // an equal-priority submission cannot displace anything: 429
    let err = client.submit("t", Some("low"), &job(2)).unwrap_err();
    assert_eq!(err.status(), Some(429), "queue full for equals: {err}");

    // a higher class evicts the latest-arrived low job — never the
    // running one, never the earlier-queued one
    let high = client.submit("t", Some("high"), &job(2)).unwrap();
    let evicted = client.job(low_b).unwrap();
    assert_eq!(
        evicted.get("state").and_then(|v| v.as_str()),
        Some("preempted"),
        "latest low job preempted from the queue"
    );
    assert!(
        evicted
            .get("error")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .contains("preempted"),
        "preemption reason recorded"
    );
    for still_there in [running, low_a] {
        let state = client
            .job(still_there)
            .unwrap()
            .get("state")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_owned();
        assert_ne!(state, "preempted", "job {still_there} survived admission");
    }

    // unblock the pool and let everything settle; the high job must have
    // dispatched before the surviving low one
    client.cancel(running).unwrap();
    assert!(shared.wait_idle(Duration::from_secs(30)), "pool drained");
    let high_seq = shared.job(high).unwrap().dispatch_seq.unwrap();
    let low_seq = shared.job(low_a).unwrap().dispatch_seq.unwrap();
    assert!(
        high_seq < low_seq,
        "high priority dispatches first ({high_seq} vs {low_seq})"
    );
    service.shutdown();
}

#[test]
fn cancel_semantics_over_http() {
    let service = Service::start(
        "127.0.0.1:0",
        ServeConfig {
            pool_gpus: 2,
            time_scale: 200.0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = Client::new(service.addr());
    let shared = service.scheduling().clone();

    let running = client.submit("t", None, &blocker_job()).unwrap();
    let queued = client.submit("t", None, &job(2)).unwrap();

    // a queued job cancels instantly and never dispatches
    assert_eq!(client.cancel(queued).unwrap(), "canceled");
    let rec = client.job(queued).unwrap();
    assert_eq!(rec.get("state").and_then(|v| v.as_str()), Some("canceled"));
    assert!(rec.get("dispatch_seq").is_none(), "never dispatched");

    // cancelling twice is a conflict, unknown ids are 404
    let err = client.cancel(queued).unwrap_err();
    assert_eq!(err.status(), Some(409), "double cancel: {err}");
    let err = client.cancel(999_999).unwrap_err();
    assert_eq!(err.status(), Some(404), "unknown id: {err}");

    // a running job acknowledges the cancel and stops at the next
    // checkpoint
    assert_eq!(client.cancel(running).unwrap(), "running");
    let rec = shared.wait_job(running, Duration::from_secs(30)).unwrap();
    assert_eq!(rec.state, JobState::Canceled);
    service.shutdown();
}

#[test]
fn warm_restart_serves_cached_plans_without_replanning() {
    let store = std::env::temp_dir().join(format!(
        "micco-serve-int-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&store);
    let config = || ServeConfig {
        pool_gpus: 2,
        store: Some(store.clone()),
        ..ServeConfig::default()
    };

    // first daemon: the submission plans cold and logs the decision
    let service = Service::start("127.0.0.1:0", config()).unwrap();
    let client = Client::new(service.addr());
    let shared = service.scheduling().clone();
    let cold = client.submit("acme", None, &job(2)).unwrap();
    let rec = shared.wait_job(cold, Duration::from_secs(30)).unwrap();
    assert_eq!(rec.state, JobState::Done);
    assert!(!rec.result.unwrap().warm, "fresh store plans cold");
    let (_, log_hits, misses) = shared.cache_stats().unwrap();
    assert_eq!((log_hits, misses), (0, 1), "one miss, no log hits yet");
    service.shutdown();

    // second daemon over the same directory: the identical submission is
    // served from the durable log — the scheduler is never invoked
    let service = Service::start("127.0.0.1:0", config()).unwrap();
    let client = Client::new(service.addr());
    let shared = service.scheduling().clone();
    let warm = client.submit("acme", None, &job(2)).unwrap();
    let rec = shared.wait_job(warm, Duration::from_secs(30)).unwrap();
    assert_eq!(rec.state, JobState::Done);
    assert!(rec.result.unwrap().warm, "restart serves the logged plan");
    let (_, log_hits, misses) = shared.cache_stats().unwrap();
    assert_eq!((log_hits, misses), (1, 0), "replayed, not re-planned");

    // and the warm start is visible to operators via /metrics
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("plan_cache.log_hits 1"),
        "log hit exported: {metrics}"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}
